"""Cluster assembly: build and run a simulated CephFS metadata cluster.

``SimulatedCluster`` wires together the substrates (engine, network, RADOS,
namespace, MDS ranks, clients), installs a Mantle policy, runs a workload
to completion and returns a :class:`SimReport` -- the unit every example
and benchmark in this repository is built from.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from .analysis import DEFAULT_LINT_RANKS, LintReport, PolicyLintError, \
    lint_policy
from .clients.client import Client, build_clients
from .config import ClusterConfig
from .core.api import MantlePolicy
from .core.balancer import BalanceDecision, MantleBalancer
from .faults.injector import FaultInjector
from .faults.schedule import FaultSchedule
from .lifecycle import (CanaryController, PolicyStore, PolicyVersion,
                        ShadowEvaluator, ShadowTick, StabilityGuard)
from .mds.server import MdsServer
from .metrics.collectors import ClusterMetrics, FaultRecord, LifecycleRecord
from .metrics.heatmap import HeatSampler
from .metrics.stats import Summary, summarize
from .namespace.tree import Namespace
from .rados.cluster import RadosCluster
from .sim.engine import SimEngine
from .sim.network import Network
from .sim.rng import RngStreams
from .workloads.base import Workload


@dataclass
class SimReport:
    """Everything a benchmark needs from one run."""

    config: ClusterConfig
    policy_name: str
    makespan: float
    total_ops: int
    client_runtimes: dict[int, float]
    metrics: ClusterMetrics
    decisions: list[BalanceDecision] = field(default_factory=list)
    heat: Optional[HeatSampler] = None
    fault_events: list[FaultRecord] = field(default_factory=list)
    #: True when the balancer's circuit breaker tripped during the run.
    policy_tripped: bool = False
    #: Policy-lifecycle trace: breaker transitions, guard vetoes, canary
    #: rollout events, version commits.
    lifecycle_events: list[LifecycleRecord] = field(default_factory=list)
    #: Version log of the RADOS-backed policy store.
    policy_log: list[PolicyVersion] = field(default_factory=list)
    #: Per-tick divergence log of an armed shadow policy (empty otherwise).
    shadow_log: list[ShadowTick] = field(default_factory=list)
    #: Aggregate shadow stats (None when no shadow was armed).
    shadow_summary: Optional[dict] = None
    #: Static-analysis reports for every policy injected through
    #: ``set_policy`` during this run, keyed by policy name (empty when
    #: lint was disabled).
    lint_reports: dict[str, LintReport] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Overall requests/second across the whole run."""
        return self.total_ops / self.makespan if self.makespan > 0 else 0.0

    @property
    def total_forwards(self) -> int:
        return self.metrics.total_forwards

    @property
    def total_migrations(self) -> int:
        return self.metrics.total_migrations

    @property
    def total_session_flushes(self) -> int:
        return self.metrics.total_session_flushes

    @property
    def sessions_opened(self) -> int:
        return self._sessions_opened

    _sessions_opened: int = 0

    @property
    def total_migrations_aborted(self) -> int:
        return sum(m.migrations_aborted
                   for m in self.metrics.per_mds.values())

    # -- fault/recovery views -------------------------------------------
    def recovery_times(self) -> dict[int, float]:
        """Seconds from each rank's crash to its recovery.

        Recovery is either the rank's own restart completing or a standby
        finishing a takeover of its subtrees, whichever the trace shows
        first.  Unrecovered crashes are omitted.
        """
        out: dict[int, float] = {}
        crashed_at: dict[int, float] = {}
        for event in self.fault_events:
            if event.kind == "crash":
                crashed_at.setdefault(event.rank, event.time)
            elif event.kind == "restart":
                start = crashed_at.pop(event.rank, None)
                if start is not None and event.rank not in out:
                    out[event.rank] = event.time - start
            elif event.kind == "takeover":
                # detail: "mds<dead>->mds<standby>, ..."
                dead = _takeover_source(event.detail)
                if dead is None:
                    continue
                start = crashed_at.pop(dead, None)
                if start is not None and dead not in out:
                    out[dead] = event.time - start
        return out

    def throughput_between(self, t0: float, t1: float) -> float:
        """Mean requests/second over the window [t0, t1)."""
        if t1 <= t0:
            return 0.0
        timeline = self.metrics.timeline
        series = timeline.total_series()
        bucket = timeline.bucket
        first = max(0, int(t0 / bucket))
        last = min(len(series), int(t1 / bucket))
        ops = sum(series[i] * bucket for i in range(first, last))
        return ops / (t1 - t0)

    def latency_summary(self) -> Summary:
        return summarize(self.metrics.latencies.all_latencies())

    def runtime_summary(self) -> Summary:
        return summarize(self.client_runtimes.values())

    def per_mds_ops(self) -> dict[int, int]:
        return {rank: m.ops_served for rank, m in
                sorted(self.metrics.per_mds.items())}

    def summary_line(self) -> str:
        per_mds = " ".join(
            f"mds{rank}:{ops}" for rank, ops in self.per_mds_ops().items()
        )
        faults = ""
        if self.fault_events:
            faults = (f" faults={len(self.fault_events)}"
                      f" mig_aborted={self.total_migrations_aborted}")
        if self.policy_tripped:
            faults += " policy=fallback"
        if self.lifecycle_events:
            kinds = [event.kind for event in self.lifecycle_events]
            if "canary-promote" in kinds:
                faults += " canary=promoted"
            elif "canary-rollback" in kinds:
                faults += " canary=rolled-back"
            vetoes = kinds.count("guard-veto")
            if vetoes:
                faults += f" vetoes={vetoes}"
        return (
            f"[{self.policy_name}] makespan={self.makespan:.1f}s "
            f"ops={self.total_ops} tput={self.throughput:.0f}/s "
            f"fwd={self.total_forwards} mig={self.total_migrations} "
            f"flush={self.total_session_flushes}{faults} | {per_mds}"
        )


@contextmanager
def _gc_paused():
    """Disable the cyclic GC for the duration of a simulation run.

    The event loop allocates and frees millions of small objects whose
    lifetimes the reference counter already handles; periodic cycle
    collection just adds pauses.  Collect once on exit to reclaim any
    true cycles (completion callback chains).
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def _takeover_source(detail: str) -> Optional[int]:
    """Rank a takeover record recovered, parsed from its detail string."""
    if not detail.startswith("mds"):
        return None
    head = detail[3:].split("->", 1)[0]
    return int(head) if head.isdigit() else None


class SimulatedCluster:
    """A CephFS-like metadata cluster with Mantle hooks."""

    def __init__(self, config: ClusterConfig,
                 policy: Optional[MantlePolicy] = None,
                 heat_sampling: float | None = None,
                 heat_depth: int = 4,
                 fault_schedule: Optional[FaultSchedule] = None,
                 namespace: Optional[Namespace] = None,
                 lint_policies: bool = True) -> None:
        config.validate()
        self.config = config
        #: Gate every ``set_policy`` behind the static analyzer (the
        #: per-call ``lint=`` argument overrides this default).
        self.lint_policies = lint_policies
        self._lint_reports: dict[str, LintReport] = {}
        self.engine = SimEngine()
        self.rngs = RngStreams(seed=config.seed)
        self.network = Network(
            self.engine, self.rngs.stream("network"),
            base_latency=config.net_latency,
            jitter_cv=config.net_jitter_cv,
        )
        self.rados = RadosCluster(
            self.engine, self.network, self.rngs,
            num_osds=config.num_osds,
        )
        # A pre-built (possibly pre-populated) namespace may be supplied by
        # the warm-start cell server so sibling cells share one construction
        # pass; it must have been built by build_namespace(config) with the
        # same namespace-relevant config fields.
        self.namespace = (namespace if namespace is not None
                          else self.build_namespace(config))
        self.metrics = ClusterMetrics()
        self.mdss = [
            MdsServer(self.engine, rank, self.namespace, self.network,
                      self.rados, config, self.rngs.stream(f"mds{rank}"),
                      self.metrics)
            for rank in range(config.num_mds)
        ]
        for mds in self.mdss:
            mds.peers = self.mdss
        # Policy lifecycle: versioned store (RADOS-mirrored), optional
        # online stability guard, shadow/canary slots.
        self.policy_store = PolicyStore(self.rados)
        self.guard: Optional[StabilityGuard] = None
        if config.stability_guard:
            self.guard = StabilityGuard(
                window=config.guard_window,
                max_bounces=config.guard_max_bounces,
                events=self.metrics.record_lifecycle,
            )
        self.shadow: Optional[ShadowEvaluator] = None
        self.canary: Optional[CanaryController] = None
        #: Every balancer that ran during this simulation (the shared
        #: primary, plus a canary's if one was armed) -- the report merges
        #: their decision logs.
        self.balancers: list[MantleBalancer] = []
        self.balancer: Optional[MantleBalancer] = None
        if policy is not None:
            self.set_policy(policy)
        self.clients: list[Client] = []
        self.heat: Optional[HeatSampler] = None
        if heat_sampling:
            self.heat = HeatSampler(self.engine, self.namespace,
                                    interval=heat_sampling,
                                    max_depth=heat_depth)
        # Staged-run state (begin_workload / finish_workload).
        self._all_done = None
        self._max_time = 36_000.0
        self._deadline = None
        self.injector: Optional[FaultInjector] = None
        if fault_schedule is not None and len(fault_schedule) > 0:
            # The dedicated stream keeps no-fault runs byte-identical:
            # without faults nothing ever draws from it.
            self.injector = FaultInjector(self, fault_schedule,
                                          self.rngs.stream("faults"))

    @staticmethod
    def build_namespace(config: ClusterConfig) -> Namespace:
        """The namespace exactly as ``__init__`` would build it."""
        return Namespace(
            half_life=config.decay_half_life,
            split_size=config.dir_split_size,
            split_bits=config.dir_split_bits,
            root_auth=0,
        )

    # -- policy injection ---------------------------------------------------
    def set_policy(self, policy: MantlePolicy, note: str = "inject",
                   lint: Optional[bool] = None) -> None:
        """Inject a Mantle policy into every rank (``ceph tell mds.*``).

        The policy first passes through the static analyzer
        (:func:`repro.analysis.lint_policy`); an error-severity finding
        raises :class:`PolicyLintError` before anything is installed.
        Pass ``lint=False`` (or construct the cluster with
        ``lint_policies=False``) to bypass the gate -- the §4.4 dry-run
        validator and the runtime circuit breaker still apply.

        Every injection is a recorded version transition in the policy
        store, with the previous version retained for rollback.  The commit
        is stamped at t=0.0 regardless of the engine clock: injection is
        pre-run bookkeeping, and warm-started runs replay it at the fork
        barrier rather than at construction time (see
        :mod:`repro.lifecycle.store`).
        """
        if lint is None:
            lint = self.lint_policies
        lint_summary = ""
        if lint:
            # Lint at the larger of the real cluster size and the dry-run
            # default: range proofs stay valid, never spuriously tighter.
            lint_report = lint_policy(
                policy,
                num_ranks=max(len(self.mdss), DEFAULT_LINT_RANKS),
            )
            self._lint_reports[policy.name] = lint_report
            lint_summary = lint_report.summary()
            if not lint_report.ok:
                raise PolicyLintError(lint_report)
        self.balancer = MantleBalancer(
            policy,
            error_threshold=self.config.policy_error_threshold,
            probation_ticks=self.config.policy_probation_ticks,
            guard=self.guard,
            events=self.metrics.record_lifecycle,
        )
        self.balancers = [self.balancer]
        for mds in self.mdss:
            mds.balancer = self.balancer
        version = self.policy_store.commit(policy, 0.0, note=note,
                                           lint=lint_summary)
        self.metrics.record_lifecycle(
            0.0, "policy-commit", -1,
            f"v{version.version}: '{policy.name}' ({note})",
        )

    def clear_policy(self) -> None:
        self.balancer = None
        self.balancers = []
        for mds in self.mdss:
            mds.balancer = None

    # -- lifecycle: shadow & canary -----------------------------------------
    def arm_shadow(self, policy: MantlePolicy) -> ShadowEvaluator:
        """Dry-run *policy* beside the live balancer on every tick.

        The shadow sees the exact bindings the live policy decided on but
        never applies its decisions; its divergence log lands in the
        report's ``shadow_log``.
        """
        if self.balancer is None:
            raise RuntimeError("inject a live policy before arming a shadow")
        self.shadow = ShadowEvaluator(policy)
        self.balancer.shadow = self.shadow
        return self.shadow

    def arm_canary(self, candidate: MantlePolicy,
                   rank: Optional[int] = None,
                   at: float = 30.0, window: float = 20.0,
                   **health) -> CanaryController:
        """Stage *candidate* on one rank at time *at*; after *window*
        seconds of health it is promoted to all ranks, otherwise the canary
        rank rolls back to the live policy (and the store to its prior
        version).  *health* forwards to :class:`CanaryController` (e.g.
        ``max_errors``, ``max_migrations``, ``latency_factor``)."""
        controller = CanaryController(self, candidate, rank=rank,
                                      at=at, window=window, **health)
        self.canary = controller
        self.mdss[controller.rank].lifecycle = controller
        self.balancers.append(controller.balancer)
        return controller

    # -- manual partitioning (for the Fig 3 forced-spread setups) ------------
    def pin(self, path: str, rank: int) -> None:
        """Pin the subtree at *path* to *rank* (like ``setfattr ceph.dir.pin``)."""
        if not 0 <= rank < len(self.mdss):
            raise ValueError(f"no such rank {rank}")
        directory = self.namespace.resolve_dir(path)
        directory.set_auth(rank)
        directory.clear_descendant_auth()

    def spread_dirfrags(self, path: str, ranks: list[int]) -> None:
        """Assign the dirfrags of *path* round-robin over *ranks*."""
        directory = self.namespace.resolve_dir(path)
        frags = list(directory.frags.values())
        for index, frag in enumerate(frags):
            frag.set_auth(ranks[index % len(ranks)])

    def hash_partition(self, depth: int = 1) -> int:
        """Statically hash-partition the namespace over all ranks.

        The related-work baseline (paper §5, "Compute it - Hashing", e.g.
        PVFSv2/SkyFS): every directory at *depth* is pinned to
        ``hash(path) % num_mds``, destroying locality by construction but
        giving perfect static balance.  Returns the number of pins made.
        Call after the relevant directories exist (e.g. from
        ``workload.prepare`` or mid-run).
        """
        from .rados.crush import _hash64

        pinned = 0
        for directory in list(self.namespace.root.walk()):
            if directory.depth() == depth:
                rank = _hash64(directory.path()) % len(self.mdss)
                directory.set_auth(rank)
                directory.clear_descendant_auth()
                pinned += 1
        return pinned

    # -- running -------------------------------------------------------
    def run_workload(self, workload: Workload,
                     max_time: float = 36_000.0) -> SimReport:
        """Prepare, start clients and heartbeats, run to completion."""
        self.begin_workload(workload, max_time=max_time)
        return self.finish_workload()

    def begin_workload(self, workload: Workload,
                       max_time: float = 36_000.0,
                       skip_prepare: bool = False) -> None:
        """Stage 1 of a run: prepare, start clients/heartbeats, arm the
        completion and deadline -- everything up to executing events.

        ``skip_prepare`` is for the warm-start path, whose construction
        server already ran ``workload.prepare`` into the shared namespace.
        Everything here (including the deadline event) is scheduled in the
        same order as an unsplit run, so event sequence numbers -- and
        therefore tie-breaking, and therefore results -- are identical.
        """
        if not skip_prepare:
            workload.prepare(self.namespace)
        if self.injector is not None:
            self.injector.arm()
        self.clients = build_clients(
            self.engine, self.network, self.mdss, self.metrics,
            workload.op_streams(),
            pipeline=self.config.client_pipeline,
            think_time=self.config.client_think_time,
            cap_switch_time=self.config.cap_switch_time,
        )
        for mds in self.mdss:
            mds.start_heartbeats()
        for client in self.clients:
            client.start()

        all_done = self.engine.completion()
        remaining = len(self.clients)

        def one_done(_completion) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                all_done.succeed(None)

        for client in self.clients:
            client.done.add_callback(one_done)
        self._all_done = all_done
        self._max_time = max_time
        self._deadline = None
        if self.clients:
            self._deadline = self.engine.schedule(
                max_time, all_done.fail,
                RuntimeError(f"workload exceeded {max_time} simulated "
                             "seconds"),
            )

    def run_shared_prefix(self, until: float) -> None:
        """Stage 2 (optional): run the policy-independent prefix.

        Executes events strictly before *until* (or until the workload
        completes, whichever is first).  Must only be called with *until*
        at or before the first policy-divergent event -- for stock
        workloads that is the first heartbeat metaload snapshot at
        ``config.heartbeat_interval`` (see Workload.shared_prefix_end).
        """
        if until <= 0:
            return
        with _gc_paused():
            self.engine.run_before(until, completion=self._all_done)

    def finish_workload(self) -> SimReport:
        """Final stage: run the (remaining) workload, return the report."""
        all_done = self._all_done
        with _gc_paused():
            if not self.clients:
                self.engine.run_until(self._max_time)
            else:
                self.engine.run_until_complete(
                    all_done, max_events=self.config.max_events
                )
                self._deadline.cancel()
        return self._report()

    def run_for(self, duration: float) -> SimReport:
        """Run without a workload for *duration* simulated seconds."""
        if self.injector is not None:
            self.injector.arm()
        for mds in self.mdss:
            mds.start_heartbeats()
        with _gc_paused():
            self.engine.run_until(self.engine.now + duration)
        return self._report()

    def quiesce(self, max_time: float = 120.0) -> None:
        """Step the engine until no export is in flight (bounded).

        Clients can finish while a migration 2PC is still mid-commit; the
        invariant checks (and byte-identical reports) want those commits
        resolved.  Heartbeat loops never drain the heap, so this steps
        events rather than running to empty.
        """
        deadline = self.engine.now + max_time
        while any(mds.migrator.in_flight for mds in self.mdss):
            if self.engine.now >= deadline or not self.engine.step():
                break

    def _merged_decisions(self) -> list[BalanceDecision]:
        """Decision log across all balancers that ran.

        With a single balancer the list is returned as-is (the seed
        behaviour); with a canary's second balancer the two logs interleave
        sorted by tick time (ranks tick at distinct, offset times).
        """
        if not self.balancers:
            return []
        if len(self.balancers) == 1:
            return list(self.balancers[0].decisions)
        merged = [decision for balancer in self.balancers
                  for decision in balancer.decisions]
        merged.sort(key=lambda d: (d.time, d.rank))
        return merged

    def _report(self) -> SimReport:
        if self.heat is not None:
            self.heat.stop()
        report = SimReport(
            config=self.config,
            policy_name=(self.balancer.policy.name
                         if self.balancer else "none"),
            makespan=self.metrics.makespan(),
            total_ops=self.metrics.total_ops,
            client_runtimes=self.metrics.client_runtimes(),
            metrics=self.metrics,
            decisions=self._merged_decisions(),
            heat=self.heat,
            fault_events=list(self.metrics.fault_events),
            policy_tripped=(self.balancer.tripped
                            if self.balancer else False),
            lifecycle_events=list(self.metrics.lifecycle_events),
            policy_log=list(self.policy_store.log()),
            shadow_log=(list(self.shadow.log) if self.shadow else []),
            shadow_summary=(self.shadow.summary() if self.shadow else None),
            lint_reports=dict(self._lint_reports),
        )
        report._sessions_opened = sum(
            mds.sessions.sessions_opened for mds in self.mdss
        )
        return report


def run_experiment(config: ClusterConfig, workload: Workload,
                   policy: Optional[MantlePolicy] = None,
                   heat_sampling: float | None = None,
                   max_time: float = 36_000.0,
                   fault_schedule: Optional[FaultSchedule] = None
                   ) -> SimReport:
    """One-shot convenience: build a cluster, run a workload, report."""
    cluster = SimulatedCluster(config, policy=policy,
                               heat_sampling=heat_sampling,
                               fault_schedule=fault_schedule)
    report = cluster.run_workload(workload, max_time=max_time)
    if fault_schedule is not None:
        # Resolve any 2PC still mid-commit, then re-snapshot the report so
        # its fault trace includes everything up to the quiesced state.
        cluster.quiesce()
        report = cluster._report()
    return report


def run_seeds(config: ClusterConfig, workload_factory, seeds,
              policy_factory=None, max_time: float = 36_000.0
              ) -> list[SimReport]:
    """Run the same experiment across seeds (Fig 4's reproducibility view)."""
    reports = []
    for seed in seeds:
        cfg = config.with_overrides(seed=int(seed))
        policy = policy_factory() if policy_factory else None
        reports.append(
            run_experiment(cfg, workload_factory(), policy=policy,
                           max_time=max_time)
        )
    return reports
