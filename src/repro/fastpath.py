"""Global switch for the semantically-transparent fast paths.

Every optimization that caches or short-circuits *simulation-visible*
computation (policy AST/environment caches, batched counter decay,
namespace authority/frag-map caches, transpiled load formulas) consults
``ENABLED`` so the equivalence tests can run the same experiment down both
paths and assert bit-identical results.

Set ``REPRO_DISABLE_FAST_PATHS=1`` in the environment (or flip
:data:`ENABLED` before building a cluster) to force the original
straight-line code.  Structural optimizations that cannot change results
(tuple-based event heap, precomputed lognormal parameters, ``__slots__``)
are not gated.
"""

from __future__ import annotations

import os

#: True unless REPRO_DISABLE_FAST_PATHS=1.  Read at call sites via
#: ``fastpath.ENABLED`` so tests can monkeypatch it.
ENABLED: bool = os.environ.get("REPRO_DISABLE_FAST_PATHS", "") != "1"


def set_enabled(flag: bool) -> None:
    """Flip the fast paths (used by the equivalence tests)."""
    global ENABLED
    ENABLED = bool(flag)
