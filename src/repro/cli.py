"""Command-line interface: ``mantle-sim``.

Mirrors the paper's operational flow (``ceph tell mds.* injectargs ...``)
against the simulated cluster:

* ``mantle-sim policies`` — list the stock policies;
* ``mantle-sim show <policy>`` — print a policy as a ``.lua`` policy file;
* ``mantle-sim validate <policy-or-file>`` — pre-injection validation
  (paper §4.4's "simulator that checks the logic before injecting");
* ``mantle-sim lint <policy-or-file>...`` — static analysis only
  (mantle-lint: CFG/def-use, hook contracts, loop bounds, purity;
  see docs/ANALYSIS.md for the rule catalogue);
* ``mantle-sim run ...`` — run a workload under a policy and report;
* ``mantle-sim inspect ...`` — same run, post-hoc behaviour analysis
  (migration cadence, thrash, guard vetoes, rollout events);
* ``mantle-sim store log|show|diff FILE ...`` — browse a versioned
  policy-store dump (``run --store-dump``, see docs/LIFECYCLE.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .cluster import SimulatedCluster
from .config import ClusterConfig
from .core.api import MantlePolicy
from .core.policies import STOCK_POLICIES
from .core.policyfile import dump_policy, load_policy_file
from .core.validator import validate_policy
from .faults.schedule import FaultSchedule
from .workloads import CompileWorkload, CreateWorkload, ZipfWorkload


def _resolve_policy(spec: str | None) -> MantlePolicy | None:
    if spec is None or spec == "none":
        return None
    if spec in STOCK_POLICIES:
        return STOCK_POLICIES[spec]()
    path = Path(spec)
    if path.exists():
        return load_policy_file(path)
    raise SystemExit(
        f"unknown policy {spec!r}: not a stock policy "
        f"({', '.join(sorted(STOCK_POLICIES))}) and no such file"
    )


def cmd_policies(_args: argparse.Namespace) -> int:
    for name, factory in sorted(STOCK_POLICIES.items()):
        policy = factory()
        print(f"{name:<28} metaload={policy.metaload.strip()[:40]}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    policy = _resolve_policy(args.policy)
    if policy is None:
        raise SystemExit("nothing to show for 'none'")
    sys.stdout.write(dump_policy(policy))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_policy

    reports = []
    for spec in args.policies:
        policy = _resolve_policy(spec)
        if policy is None:
            raise SystemExit("cannot lint 'none'")
        reports.append(lint_policy(policy, num_ranks=args.mds))
    if args.format == "json":
        import json
        print(json.dumps([report.to_dict() for report in reports],
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
    def failing(report) -> bool:
        if args.strict:
            return bool(report.diagnostics)
        return not report.ok

    if args.expect_fail:
        # CI mode for the broken-policy fixtures: every policy listed must
        # fail lint, proving the rules still fire.
        passed = [report.policy_name for report in reports
                  if not failing(report)]
        if passed:
            print("expected lint findings, but these policies passed: "
                  + ", ".join(passed), file=sys.stderr)
            return 1
        return 0
    return 1 if any(failing(report) for report in reports) else 0


def cmd_validate(args: argparse.Namespace) -> int:
    policy = _resolve_policy(args.policy)
    if policy is None:
        raise SystemExit("cannot validate 'none'")
    report = validate_policy(policy, num_ranks=args.mds,
                             lint=not args.no_lint)
    print(f"policy:   {report.policy_name}")
    print(f"ok:       {report.ok}")
    for problem in report.problems:
        print(f"problem:  {problem}")
    for warning in report.warnings:
        print(f"warning:  {warning}")
    print(f"dry run:  go={report.sample_go} targets={report.sample_targets}")
    return 0 if report.ok else 1


def _build_workload(args: argparse.Namespace):
    if args.workload == "create":
        return CreateWorkload(num_clients=args.clients,
                              files_per_client=args.files,
                              shared_dir=args.shared)
    if args.workload == "compile":
        return CompileWorkload(num_clients=args.clients, scale=args.scale,
                               seed=args.seed)
    if args.workload == "zipf":
        return ZipfWorkload(num_clients=args.clients,
                            num_files=args.files,
                            ops_per_client=args.ops,
                            seed=args.seed)
    raise SystemExit(f"unknown workload {args.workload!r}")


def cmd_run(args: argparse.Namespace) -> int:
    if args.profile or args.profile_out:
        from .perf.profiling import profiled
        with profiled(top=25, out_path=args.profile_out):
            return _cmd_run_inner(args)
    return _cmd_run_inner(args)


def _execute_run(args: argparse.Namespace):
    """Build, arm and run one cluster from ``run``-style arguments.

    Shared by ``run`` and ``inspect`` so both observe the exact same
    simulation.  Returns ``(cluster, report)``, or ``None`` after printing
    a diagnostic when the arguments describe an unrunnable simulation.
    """
    policy = _resolve_policy(args.policy)
    if policy is not None:
        report = validate_policy(policy, lint=not args.no_lint)
        if not report.ok:
            print("refusing to inject an invalid policy:", file=sys.stderr)
            for problem in report.problems:
                print(f"  {problem}", file=sys.stderr)
            if not args.no_lint and any(
                    problem.startswith("lint:")
                    for problem in report.problems):
                print("  (--no-lint bypasses the static analyzer)",
                      file=sys.stderr)
            return None
    schedule = None
    if args.faults:
        try:
            schedule = FaultSchedule.from_file(args.faults)
            schedule.validate(args.mds)
        except (OSError, ValueError) as exc:
            print(f"bad fault schedule {args.faults!r}: {exc}",
                  file=sys.stderr)
            return None
    config = ClusterConfig(
        num_mds=args.mds,
        num_clients=args.clients,
        seed=args.seed,
        dir_split_size=args.split_size,
        client_think_time=args.think,
        stability_guard=args.guard,
    )
    cluster = SimulatedCluster(config, policy=policy,
                               fault_schedule=schedule,
                               lint_policies=not args.no_lint)
    # Shadow and canary candidates are deliberately *not* validated:
    # the lifecycle machinery exists so a bad candidate cannot hurt the
    # run (the breaker, guard and rollback contain it).
    shadow = _resolve_policy(args.shadow)
    if shadow is not None:
        if policy is None:
            raise SystemExit("--shadow needs a live --policy to shadow")
        cluster.arm_shadow(shadow)
    canary = _resolve_policy(args.canary)
    if canary is not None:
        if policy is None:
            raise SystemExit(
                "--canary needs a live --policy to fall back to")
        cluster.arm_canary(canary, rank=args.canary_rank,
                           at=args.canary_at, window=args.canary_window)
    workload = _build_workload(args)
    result = cluster.run_workload(workload)
    if schedule is not None:
        cluster.quiesce()
        result = cluster._report()
    return cluster, result


def _cmd_run_inner(args: argparse.Namespace) -> int:
    outcome = _execute_run(args)
    if outcome is None:
        return 1
    cluster, result = outcome
    print(result.summary_line())
    latency = result.latency_summary()
    print(f"latency: mean={latency.mean * 1e3:.3f}ms "
          f"p95={latency.p95 * 1e3:.3f}ms p99={latency.p99 * 1e3:.3f}ms")
    if result.fault_events:
        for event in result.fault_events:
            where = f"mds{event.rank}" if event.rank >= 0 else "cluster"
            detail = f" {event.detail}" if event.detail else ""
            print(f"fault: t={event.time:8.2f}s {event.kind} {where}{detail}")
        for rank, seconds in sorted(result.recovery_times().items()):
            print(f"recovery: mds{rank} back after {seconds:.2f}s")
    for event in result.lifecycle_events:
        if event.kind == "policy-commit":
            continue
        who = f"mds{event.rank}" if event.rank >= 0 else "cluster"
        print(f"lifecycle: t={event.time:8.2f}s {event.kind} "
              f"{who}: {event.detail}")
    if result.shadow_summary is not None:
        shadow = result.shadow_summary
        print(f"shadow: '{shadow['policy']}' evaluated "
              f"{shadow['evaluated']}/{shadow['ticks']} ticks, "
              f"would_migrate={shadow['would_migrate']} "
              f"(live {shadow['live_migrated']}), "
              f"divergences={shadow['divergences']}, "
              f"errors={shadow['errors']}")
    if args.decisions:
        for decision in result.decisions:
            if decision.exports or decision.error:
                print(f"t={decision.time:8.2f}s mds{decision.rank} "
                      f"targets={decision.targets} error={decision.error}")
                for path, load, target in decision.exports:
                    print(f"    {path} (load {load:.1f}) -> mds{target}")
    if args.store_dump:
        Path(args.store_dump).write_text(cluster.policy_store.to_json())
        print(f"policy store dumped to {args.store_dump}", file=sys.stderr)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from .core.inspector import summarize_behaviour
    outcome = _execute_run(args)
    if outcome is None:
        return 1
    _cluster, result = outcome
    print(summarize_behaviour(result))
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    import difflib

    from .lifecycle import PolicyStore
    try:
        store = PolicyStore.from_json(Path(args.file).read_text())
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"bad store dump {args.file!r}: {exc}")
    versions = {version.version: version for version in store.log()}

    def pick(number: int):
        if number not in versions:
            known = ", ".join(str(v) for v in sorted(versions))
            raise SystemExit(
                f"no version {number} in {args.file} (have: {known})")
        return versions[number]

    if args.action == "log":
        for version in store.log():
            note = f"  ({version.note})" if version.note else ""
            lint = f"  [{version.lint}]" if version.lint else ""
            print(f"v{version.version}  '{version.name}'  "
                  f"@ {version.time:.1f}s{lint}{note}")
        return 0
    if args.action == "show":
        if len(args.versions) != 1:
            raise SystemExit("store show needs exactly one version number")
        sys.stdout.write(pick(args.versions[0]).source)
        return 0
    if args.action == "diff":
        if len(args.versions) != 2:
            raise SystemExit("store diff needs exactly two version numbers")
        old, new = (pick(number) for number in args.versions)
        sys.stdout.writelines(difflib.unified_diff(
            old.source.splitlines(keepends=True),
            new.source.splitlines(keepends=True),
            fromfile=f"v{old.version} ({old.name})",
            tofile=f"v{new.version} ({new.name})",
        ))
        return 0
    raise SystemExit(f"unknown store action {args.action!r}")


def _parse_seeds(text: str) -> list[int]:
    """'4' -> [0, 1, 2, 3]; '7,11,13' -> [7, 11, 13]."""
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if len(parts) == 1 and "," not in text:
        return list(range(int(parts[0])))
    return [int(part) for part in parts]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .perf.cache import open_cache
    from .perf.sweep import (build_specs, format_report, normalize_policy,
                             run_sweep_cached)
    seeds = _parse_seeds(args.seeds)
    policies = [part.strip() for part in args.policies.split(",")
                if part.strip()]
    try:
        specs = build_specs(
            seeds, policies,
            workload=args.workload,
            num_mds=args.mds,
            num_clients=args.clients,
            files_per_client=args.files,
            ops_per_client=args.ops,
            dir_split_size=args.split_size,
            guard=args.guard,
            shadow_policy=normalize_policy(args.shadow),
            canary_policy=normalize_policy(args.canary),
            canary_at=args.canary_at,
            canary_window=args.canary_window,
            lint=not args.no_lint,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    cache = open_cache(enabled=not args.no_cache)
    records, hits, misses = run_sweep_cached(
        specs, jobs=args.jobs, warm=not args.cold, cache=cache)
    sys.stdout.write(format_report(records))
    # The footer goes to stderr: stdout stays byte-identical across
    # cold/warm/cached runs (the CI determinism check diffs stdout).
    if cache is not None:
        print(f"cache: {hits} hit{'s' if hits != 1 else ''}, "
              f"{misses} miss{'es' if misses != 1 else ''} "
              f"({cache.root})", file=sys.stderr)
    if args.out:
        import json
        Path(args.out).write_text(
            json.dumps(records, indent=2, sort_keys=True) + "\n")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .perf.cache import ResultCache
    cache = ResultCache()
    if args.action == "stats":
        stats = cache.stats()
        print(f"dir:     {stats['dir']}")
        print(f"entries: {stats['entries']} "
              f"({stats['records']} records, {stats['objects']} objects)")
        print(f"bytes:   {stats['bytes']}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


#: The tracked microbenchmark baseline, relative to the repo root.
TRACKED_BASELINE = Path("benchmarks/perf/BENCH_sim.json")


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.microbench import (collect_benchmarks, compare_benchmarks,
                                  load_benchmarks, write_benchmarks)
    if args.update and not TRACKED_BASELINE.parent.is_dir():
        raise SystemExit(
            f"--update rewrites {TRACKED_BASELINE} in place; run from the "
            "repository root (benchmarks/perf/ not found here)")
    results = collect_benchmarks(scale=args.scale)
    for key in sorted(results):
        if key != "meta":
            print(f"{key:<26} {results[key]:.1f}")
    if args.json:
        write_benchmarks(args.json, results)
    if args.update:
        write_benchmarks(TRACKED_BASELINE, results)
        print(f"baseline updated: {TRACKED_BASELINE}", file=sys.stderr)
    if args.baseline:
        problems = compare_benchmarks(results, load_benchmarks(args.baseline))
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mantle-sim",
        description="Mantle (SC '15) on a simulated CephFS metadata cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list stock policies") \
        .set_defaults(func=cmd_policies)

    show = sub.add_parser("show", help="print a policy as a .lua file")
    show.add_argument("policy")
    show.set_defaults(func=cmd_show)

    validate = sub.add_parser("validate",
                              help="validate a policy before injection")
    validate.add_argument("policy", help="stock name or .lua policy file")
    validate.add_argument("--mds", type=int, default=4,
                          help="ranks in the dry-run cluster")
    validate.add_argument("--no-lint", action="store_true",
                          help="skip the static analyzer; dry-run only")
    validate.set_defaults(func=cmd_validate)

    lint = sub.add_parser(
        "lint", help="statically analyze policies (mantle-lint)")
    lint.add_argument("policies", nargs="+",
                      help="stock names and/or .lua policy files")
    lint.add_argument("--mds", type=int, default=4,
                      help="cluster size assumed for range proofs")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures too")
    lint.add_argument("--expect-fail", action="store_true",
                      help="invert the exit status: succeed only if every "
                           "policy has lint errors (CI fixture mode)")
    lint.set_defaults(func=cmd_lint)

    def add_run_arguments(command: argparse.ArgumentParser) -> None:
        """Simulation arguments shared by ``run`` and ``inspect``."""
        command.add_argument("--policy", default="none",
                             help="stock name, .lua file, or 'none'")
        command.add_argument("--workload", default="create",
                             choices=("create", "compile", "zipf"))
        command.add_argument("--mds", type=int, default=2)
        command.add_argument("--clients", type=int, default=4)
        command.add_argument("--files", type=int, default=20_000,
                             help="files per client (create) / "
                                  "population (zipf)")
        command.add_argument("--ops", type=int, default=20_000,
                             help="ops per client (zipf)")
        command.add_argument("--scale", type=float, default=5.0,
                             help="source-tree scale (compile)")
        command.add_argument("--shared", action="store_true",
                             help="create into one shared directory")
        command.add_argument("--split-size", type=int, default=10_000,
                             help="directory fragmentation threshold")
        command.add_argument("--think", type=float, default=0.0,
                             help="client think time between ops, seconds")
        command.add_argument("--seed", type=int, default=7)
        command.add_argument("--faults", default=None, metavar="FILE",
                             help="JSON fault schedule to inject "
                                  "(see docs/FAULTS.md)")
        command.add_argument("--shadow", default="none", metavar="POLICY",
                             help="dry-run this policy beside the live one "
                                  "on every tick, never applying its "
                                  "decisions (see docs/LIFECYCLE.md)")
        command.add_argument("--canary", default="none", metavar="POLICY",
                             help="stage this policy on one rank; promote "
                                  "to all ranks after a healthy window or "
                                  "auto-roll-back")
        command.add_argument("--canary-rank", type=int, default=None,
                             metavar="N",
                             help="canary rank (default: the highest)")
        command.add_argument("--canary-at", type=float, default=30.0,
                             metavar="T",
                             help="when the canary swap happens, seconds")
        command.add_argument("--canary-window", type=float, default=20.0,
                             metavar="T",
                             help="health-watch window length, seconds")
        command.add_argument("--guard", action="store_true",
                             help="enable the online stability guard "
                                  "(ping-pong export veto)")
        command.add_argument("--no-lint", action="store_true",
                             help="bypass the static-analysis injection "
                                  "gate (the dry-run validator and the "
                                  "runtime breaker still apply)")

    run = sub.add_parser("run", help="run a workload under a policy")
    add_run_arguments(run)
    run.add_argument("--decisions", action="store_true",
                     help="print every balancing decision")
    run.add_argument("--store-dump", default=None, metavar="FILE",
                     help="write the versioned policy store as JSON "
                          "(browse with 'mantle-sim store')")
    run.add_argument("--profile", action="store_true",
                     help="cProfile the run; print top-25 cumulative "
                          "functions to stderr")
    run.add_argument("--profile-out", default=None, metavar="FILE",
                     help="also dump raw pstats data to FILE")
    run.set_defaults(func=cmd_run)

    inspect = sub.add_parser(
        "inspect", help="run a workload, then print the post-hoc "
                        "behaviour analysis (cadence, thrash, lifecycle)")
    add_run_arguments(inspect)
    inspect.set_defaults(func=cmd_inspect)

    store = sub.add_parser(
        "store", help="browse a policy-store dump (run --store-dump)")
    store.add_argument("action", choices=("log", "show", "diff"))
    store.add_argument("file", help="JSON dump from 'run --store-dump'")
    store.add_argument("versions", nargs="*", type=int,
                       help="one version for 'show', two for 'diff'")
    store.set_defaults(func=cmd_store)

    sweep = sub.add_parser(
        "sweep", help="fan seeds x policies over worker processes")
    sweep.add_argument("--seeds", default="4",
                       help="count ('4' -> seeds 0..3) or explicit "
                            "comma list ('7,11,13')")
    sweep.add_argument("--policies", default="greedy-spill",
                       help="comma-separated stock names (underscore "
                            "spellings accepted, e.g. fill_spill)")
    sweep.add_argument("--workload", default="create",
                       choices=("create", "zipf"))
    sweep.add_argument("--mds", type=int, default=2)
    sweep.add_argument("--clients", type=int, default=4)
    sweep.add_argument("--files", type=int, default=2000,
                       help="files per client (create) / population (zipf)")
    sweep.add_argument("--ops", type=int, default=2000,
                       help="ops per client (zipf)")
    sweep.add_argument("--split-size", type=int, default=1000)
    sweep.add_argument("--guard", action="store_true",
                       help="enable the online stability guard in every cell")
    sweep.add_argument("--shadow", default="none", metavar="POLICY",
                       help="shadow-evaluate this stock policy in every cell")
    sweep.add_argument("--canary", default="none", metavar="POLICY",
                       help="canary this stock policy in every cell")
    sweep.add_argument("--canary-at", type=float, default=30.0)
    sweep.add_argument("--canary-window", type=float, default=20.0)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial; output is "
                            "byte-identical either way)")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="also write per-cell records as JSON")
    sweep.add_argument("--cold", action="store_true",
                       help="disable fork-based warm starts; run every "
                            "cell from scratch (results are byte-identical "
                            "either way)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="skip the result cache (REPRO_NO_CACHE=1 "
                            "does the same)")
    sweep.add_argument("--no-lint", action="store_true",
                       help="bypass the static-analysis injection gate "
                            "in every cell")
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser(
        "bench", help="run the perf microbenchmarks (BENCH_sim.json)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="shrink/grow the benchmark sizes")
    bench.add_argument("--json", default=None, metavar="FILE",
                       help="write results JSON here")
    bench.add_argument("--baseline", default=None, metavar="FILE",
                       help="compare against a baseline BENCH_sim.json; "
                            "exit 1 on >30%% throughput regression")
    bench.add_argument("--update", action="store_true",
                       help="rewrite the tracked baseline "
                            "(benchmarks/perf/BENCH_sim.json) in place; "
                            "run from the repository root")
    bench.set_defaults(func=cmd_bench)

    cache = sub.add_parser(
        "cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
